//! Extension: can `tol_network` exceed 1? (paper Section 7, footnote 2)
//!
//! The paper reports `tol_network` up to ~1.05 at large `k` under good
//! locality — the finite-delay network beating the `S = 0` ideal. For
//! *single-class* product-form networks, throughput is monotone in service
//! demands, so `tol ≤ 1` is forced; for *multi-class* networks Suri showed
//! monotonicity can fail, so `tol > 1` is not impossible in principle.
//!
//! This experiment searches small systems **with the exact MVA solver**
//! (no approximation artifacts) for the largest achievable `tol_network`,
//! and reports how close to (or beyond) 1 it gets. The outcome is recorded
//! in EXPERIMENTS.md as the honest status of the paper's +5% claim.

use crate::ctx::Ctx;
use crate::output::{fnum, Table};
use lt_core::analysis::SolverChoice;
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;
use lt_core::tolerance::tolerance_index_with;
use lt_core::topology::Topology;

/// One searched point.
pub struct NonmonoPoint {
    /// Threads.
    pub n_t: usize,
    /// Remote fraction.
    pub p_remote: f64,
    /// Locality.
    pub p_sw: f64,
    /// Runlength.
    pub r: f64,
    /// Exact tolerance index vs the `S = 0` ideal.
    pub tol: f64,
}

/// Search the 2×2-torus configuration space with exact MVA.
pub fn search(ctx: &Ctx) -> Result<Vec<NonmonoPoint>> {
    let n_ts: Vec<usize> = ctx.pick(vec![1, 2, 3, 4], vec![2, 3]);
    let ps: Vec<f64> = ctx.pick(
        vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
        vec![0.2, 0.5, 0.8],
    );
    let p_sws: Vec<f64> = ctx.pick(vec![0.1, 0.3, 0.5, 0.9], vec![0.3, 0.9]);
    let rs: Vec<f64> = ctx.pick(vec![0.5, 1.0, 2.0], vec![1.0]);
    let mut cells = Vec::new();
    for &n_t in &n_ts {
        for &p in &ps {
            for &p_sw in &p_sws {
                for &r in &rs {
                    cells.push((n_t, p, p_sw, r));
                }
            }
        }
    }
    parallel_map(&cells, |&(n_t, p_remote, p_sw, r)| {
        let cfg = SystemConfig::paper_default()
            .with_topology(Topology::torus(2))
            .with_n_threads(n_t)
            .with_p_remote(p_remote)
            .with_pattern(AccessPattern::geometric(p_sw))
            .with_runlength(r);
        let tol =
            tolerance_index_with(&cfg, IdealSpec::ZeroSwitchDelay, SolverChoice::Exact)?.index;
        Ok(NonmonoPoint {
            n_t,
            p_remote,
            p_sw,
            r,
            tol,
        })
    })
    .into_iter()
    .collect()
}

/// Generate the report.
pub fn run(ctx: &Ctx) -> Result<String> {
    let mut pts = search(ctx)?;
    pts.sort_by(|a, b| b.tol.total_cmp(&a.tol));
    let mut t = Table::new(vec!["n_t", "p_remote", "p_sw", "R", "tol_network (exact)"]);
    for p in pts.iter().take(10) {
        t.row(vec![
            p.n_t.to_string(),
            fnum(p.p_remote, 2),
            fnum(p.p_sw, 2),
            fnum(p.r, 1),
            fnum(p.tol, 5),
        ]);
    }
    // lt-lint: allow(LT04, NaN renders as "NaN" when the search grid is empty)
    let best = pts.first().map(|p| p.tol).unwrap_or(f64::NAN);
    let csv_note = ctx.save_csv("ext_nonmono", &t);
    Ok(format!(
        "Search for tol_network > 1 with exact multi-class MVA on a 2x2 \
         torus (Section 7 footnote 2).\n\nTop configurations:\n{}\n\
         Best exact tolerance found: {}. Values <= 1 here mean the paper's \
         >1 observation does not arise in this exact small-system regime; \
         see EXPERIMENTS.md for the full discussion.\n{csv_note}\n",
        t.render(),
        fnum(best, 5)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tolerance_is_sane_everywhere() {
        let ctx = Ctx::quick_temp();
        for p in search(&ctx).unwrap() {
            assert!(p.tol > 0.0 && p.tol < 1.2, "tol = {}", p.tol);
        }
    }

    #[test]
    fn strong_locality_tolerates_best() {
        let ctx = Ctx::quick_temp();
        let pts = search(&ctx).unwrap();
        // Among matched (n_t, p_remote, R), the tighter p_sw gives the
        // lower d_avg and thus at-least-as-good tolerance.
        for a in &pts {
            if a.p_sw != 0.3 {
                continue;
            }
            if let Some(b) = pts
                .iter()
                .find(|b| b.p_sw == 0.9 && b.n_t == a.n_t && b.p_remote == a.p_remote && b.r == a.r)
            {
                assert!(a.tol >= b.tol - 0.02, "p_sw .3 {} vs .9 {}", a.tol, b.tol);
            }
        }
    }

    #[test]
    fn report_renders() {
        let ctx = Ctx::quick_temp();
        assert!(run(&ctx).unwrap().contains("exact"));
    }
}
