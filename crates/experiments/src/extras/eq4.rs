//! Paper Equation 4: the network saturation law
//! `λ_net,sat = 1 / (2 · d_avg · S)`.
//!
//! We drive the model deep into saturation (`n_t = 24`, large `p_remote`)
//! and compare the observed plateau against the closed form, for both
//! switch delays and both access distributions.

use crate::ctx::Ctx;
use crate::output::{fnum, Table};
use lt_core::bottleneck::lambda_net_saturation;
use lt_core::error::{LtError, Result};
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;

/// One saturation check.
pub struct Eq4Point {
    /// Switch delay.
    pub s: f64,
    /// Geometric (`true`) or uniform (`false`).
    pub geometric: bool,
    /// Model plateau of `λ_net`.
    pub observed: f64,
    /// Closed-form bound.
    pub bound: f64,
}

/// Run the checks.
pub fn sweep(ctx: &Ctx) -> Result<Vec<Eq4Point>> {
    let mut cells = Vec::new();
    for &s in &[1.0, 2.0] {
        for geo in [true, false] {
            cells.push((s, geo));
        }
    }
    let n_t = ctx.pick(24usize, 16);
    parallel_map(&cells, |&(s, geometric)| {
        let pattern = if geometric {
            AccessPattern::geometric(0.5)
        } else {
            AccessPattern::Uniform
        };
        let base = SystemConfig::paper_default()
            .with_switch_delay(s)
            .with_pattern(pattern)
            .with_n_threads(n_t);
        let mut observed = f64::NEG_INFINITY; // lt-lint: allow(LT04, fold seed for the plateau max)
        for &p in &[0.7, 0.8, 0.9, 1.0] {
            observed = observed.max(solve(&base.with_p_remote(p))?.lambda_net);
        }
        let d_avg = pattern.d_avg(&base.arch.topology, 0);
        let bound = lambda_net_saturation(d_avg, s).ok_or_else(|| {
            LtError::DegenerateModel("Eq.4 bound requires S > 0 and d_avg > 0".into())
        })?;
        Ok(Eq4Point {
            s,
            geometric,
            observed,
            bound,
        })
    })
    .into_iter()
    .collect()
}

/// Generate the report.
pub fn run(ctx: &Ctx) -> Result<String> {
    let pts = sweep(ctx)?;
    let mut t = Table::new(vec![
        "S",
        "distribution",
        "observed plateau",
        "Eq.4 bound",
        "ratio",
    ]);
    for p in &pts {
        t.row(vec![
            fnum(p.s, 0),
            if p.geometric { "geometric" } else { "uniform" }.to_string(),
            fnum(p.observed, 4),
            fnum(p.bound, 4),
            fnum(p.observed / p.bound, 3),
        ]);
    }
    let csv_note = ctx.save_csv("eq4", &t);
    Ok(format!(
        "Network saturation law (paper Eq. 4): λ_net,sat = 1/(2 d_avg S).\n\
         The closed network approaches the open-system bound from below \
         (finite population leaves a few percent of slack).\n\n{}\n{csv_note}\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plateau_sits_just_below_the_bound() {
        let ctx = Ctx::quick_temp();
        for p in sweep(&ctx).unwrap() {
            let ratio = p.observed / p.bound;
            assert!(
                (0.75..=1.0001).contains(&ratio),
                "S={} geo={}: ratio {ratio}",
                p.s,
                p.geometric
            );
        }
    }

    #[test]
    fn doubling_s_halves_the_plateau() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let geo = |s: f64| {
            pts.iter()
                .find(|p| p.s == s && p.geometric)
                .unwrap()
                .observed
        };
        let ratio = geo(1.0) / geo(2.0);
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn uniform_saturates_lower_than_geometric() {
        // Larger d_avg (uniform) means a lower saturation rate.
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let geo = pts.iter().find(|p| p.s == 1.0 && p.geometric).unwrap();
        let uni = pts.iter().find(|p| p.s == 1.0 && !p.geometric).unwrap();
        assert!(uni.bound < geo.bound);
        assert!(uni.observed < geo.observed);
    }
}
