//! Experiment execution context: output directory and resolution control.

use crate::output::{write_file, Table};
use crate::svg::SvgChart;
use std::path::{Path, PathBuf};

/// Where results go and how big the sweeps are.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Directory for CSV/text artifacts.
    pub out_dir: PathBuf,
    /// Shrink grids and horizons (benches, smoke tests).
    pub quick: bool,
}

impl Ctx {
    /// Full-resolution context writing into `out_dir`.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        Ctx {
            out_dir: out_dir.into(),
            quick: false,
        }
    }

    /// Quick context writing into a temp directory (used by benches/tests).
    pub fn quick_temp() -> Self {
        Ctx {
            out_dir: std::env::temp_dir().join("lt-experiments"),
            quick: true,
        }
    }

    /// Pick between full and quick values.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Write a table as `name.csv` into the output directory; errors are
    /// reported in the returned note rather than unwound, so a read-only
    /// output directory degrades gracefully.
    pub fn save_csv(&self, name: &str, table: &Table) -> String {
        match write_file(&self.out_dir, &format!("{name}.csv"), &table.to_csv()) {
            Ok(path) => format!("[csv: {}]", path.display()),
            Err(e) => format!("[csv {name}.csv not written: {e}]"),
        }
    }

    /// Render a chart as `name.svg` into the output directory (same
    /// graceful degradation as [`Ctx::save_csv`]).
    pub fn save_svg(
        &self,
        name: &str,
        chart: &SvgChart,
        series: &[(String, Vec<(f64, f64)>)],
    ) -> String {
        let Some(svg) = chart.render(series) else {
            return format!("[svg {name}.svg skipped: no finite data]");
        };
        match write_file(&self.out_dir, &format!("{name}.svg"), &svg) {
            Ok(path) => format!("[svg: {}]", path.display()),
            Err(e) => format!("[svg {name}.svg not written: {e}]"),
        }
    }

    /// The output directory as a path.
    pub fn dir(&self) -> &Path {
        &self.out_dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_respects_quick_flag() {
        let full = Ctx::new("/tmp/x");
        assert_eq!(full.pick(10, 2), 10);
        let quick = Ctx {
            quick: true,
            ..full
        };
        assert_eq!(quick.pick(10, 2), 2);
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("lt-ctx-test");
        let _ = std::fs::remove_dir_all(&dir);
        let ctx = Ctx::new(&dir);
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1"]);
        let note = ctx.save_csv("t", &t);
        assert!(note.contains("t.csv"));
        assert!(dir.join("t.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
