//! Paper Figure 8: `tol_memory` over the `(n_t, R)` plane for memory
//! latencies `L ∈ {1, 2}` at `p_remote = 0.2`.
//!
//! Reproduced shapes: for `R ≥ 2L` and moderate thread counts the memory
//! latency is fully tolerated (`tol_memory → 1`); doubling `L` pushes the
//! tolerated region toward larger runlengths.

use crate::ctx::Ctx;
use crate::output::{ascii_chart, fnum, Table};
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::{grid, parallel_map};

/// Axes of the surface.
pub fn axes(ctx: &Ctx) -> (Vec<usize>, Vec<usize>) {
    let n_t = ctx.pick((1..=20).collect(), vec![1, 2, 4, 8, 16]);
    let r = ctx.pick((1..=10).collect(), vec![1, 2, 4, 8]);
    (n_t, r)
}

/// Solve the `tol_memory` surface for one memory latency.
pub fn surface(ctx: &Ctx, l: f64) -> Result<Vec<(usize, usize, ToleranceReport)>> {
    let (n_ts, rs) = axes(ctx);
    let cells = grid(&n_ts, &rs);
    let base = SystemConfig::paper_default().with_memory_latency(l);
    parallel_map(&cells, |&(n_t, r)| {
        let cfg = base.with_n_threads(n_t).with_runlength(r as f64);
        let tol = tolerance_index(&cfg, IdealSpec::ZeroMemoryDelay)?;
        Ok((n_t, r, tol))
    })
    .into_iter()
    .collect()
}

/// Generate the figure.
pub fn run(ctx: &Ctx) -> Result<String> {
    let mut out =
        String::from("tol_memory over the (n_t, R) plane, p_remote = 0.2 (paper Figure 8).\n\n");
    for &l in &[1.0, 2.0] {
        let pts = surface(ctx, l)?;
        let mut csv = Table::new(vec!["L", "n_t", "R", "tol_memory", "u_p", "zone"]);
        for (n_t, r, tol) in &pts {
            csv.row(vec![
                fnum(l, 1),
                n_t.to_string(),
                r.to_string(),
                fnum(tol.index, 4),
                fnum(tol.u_p, 4),
                tol.zone.label().to_string(),
            ]);
        }
        let csv_note = ctx.save_csv(&format!("fig8_L{}", l as u32), &csv);

        let (_, rs) = axes(ctx);
        let xs: Vec<f64> = rs.iter().map(|&r| r as f64).collect();
        let series: Vec<(String, Vec<f64>)> = [1usize, 4, 16]
            .iter()
            .map(|&n| {
                let ys = rs
                    .iter()
                    .map(|&r| {
                        pts.iter()
                            .find(|(nt, rr, _)| *nt == n && *rr == r)
                            .map(|(_, _, t)| t.index)
                            // lt-lint: allow(LT04, NaN marks a missing grid cell; the chart skips non-finite points)
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                (format!("n_t = {n}"), ys)
            })
            .collect();
        let refs: Vec<(&str, &[f64])> = series
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect();
        out.push_str(&ascii_chart(
            &format!("tol_memory vs R at L = {l}"),
            &xs,
            &refs,
            60,
            12,
        ));
        out.push_str(&format!("{csv_note}\n\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_tolerance_saturates_for_long_runlengths() {
        // Paper: "For R >= 2L and n_t >= 6, tol_memory saturates at ~1".
        let ctx = Ctx::quick_temp();
        let pts = surface(&ctx, 1.0).unwrap();
        let t = pts
            .iter()
            .find(|(n, r, _)| *n == 8 && *r == 4)
            .unwrap()
            .2
            .index;
        assert!(t > 0.9, "tol_memory = {t}");
    }

    #[test]
    fn doubling_l_lowers_tolerance() {
        let ctx = Ctx::quick_temp();
        let l1 = surface(&ctx, 1.0).unwrap();
        let l2 = surface(&ctx, 2.0).unwrap();
        for ((n, r, a), (n2, r2, b)) in l1.iter().zip(&l2) {
            assert_eq!((n, r), (n2, r2));
            assert!(
                b.index <= a.index + 0.02,
                "n_t={n} R={r}: L2 {} > L1 {}",
                b.index,
                a.index
            );
        }
    }

    #[test]
    fn tolerating_memory_does_not_imply_high_u_p() {
        // Paper Section 6 point 1: high tol_memory with low U_p is possible
        // when the *network* is the bottleneck.
        // p_remote = 0.9 at R = 2 drives λ_net past the Eq. 4 bound, so
        // the network throttles U_p while the memory stays lightly loaded.
        let cfg = SystemConfig::paper_default()
            .with_p_remote(0.9)
            .with_runlength(2.0)
            .with_n_threads(8);
        let tol_mem = tolerance_index(&cfg, IdealSpec::ZeroMemoryDelay).unwrap();
        assert!(tol_mem.index > 0.85, "memory tolerated: {}", tol_mem.index);
        assert!(tol_mem.u_p < 0.8, "but U_p is held down by the network");
    }

    #[test]
    fn report_renders_both_l_values() {
        let ctx = Ctx::quick_temp();
        let text = run(&ctx).unwrap();
        assert!(text.contains("L = 1"));
        assert!(text.contains("L = 2"));
    }
}
