//! Paper Figure 4: `U_p`, `S_obs`, `λ_net`, and `tol_network` as functions
//! of `(n_t, p_remote)` at runlength `R = 1`.
//!
//! Shapes the paper reports (and this generator reproduces):
//! * `λ_net` saturates near `1/(2·d_avg·S) ≈ 0.29`, with the onset around
//!   `p_remote ≈ 0.3`;
//! * `U_p` is near its maximum for small `p_remote`, drops past the
//!   critical point, and flattens once the network saturates;
//! * most of the `U_p` gain arrives by `n_t ≈ 4–8`;
//! * `tol_network` crosses the 0.8 (tolerated) and 0.5 (partially
//!   tolerated) planes as `p_remote` grows.

use crate::ctx::Ctx;
use crate::figures::common::network_surface_report;

/// Generate the figure.
pub fn run(ctx: &Ctx) -> lt_core::error::Result<String> {
    network_surface_report(ctx, 1.0, "fig4")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::network_surface;

    #[test]
    fn report_mentions_saturation() {
        let ctx = Ctx::quick_temp();
        let text = run(&ctx).unwrap();
        assert!(text.contains("Saturation"));
        assert!(text.contains("tol_network"));
    }

    #[test]
    fn u_p_decreases_with_p_remote_at_fixed_threads() {
        let ctx = Ctx::quick_temp();
        let pts = network_surface(&ctx, 1.0).unwrap();
        let at = |p: f64| {
            pts.iter()
                .find(|pt| pt.n_t == 8 && (pt.p_remote - p).abs() < 1e-9)
                .unwrap()
                .rep
                .u_p
        };
        assert!(at(0.1) > at(0.5));
        assert!(at(0.5) > at(0.8));
    }

    #[test]
    fn lambda_net_saturates_near_eq4_bound() {
        // Paper: λ_net saturates at ~0.29 for S = 1 (within the few percent
        // the finite-population model leaves below the open bound).
        let ctx = Ctx::quick_temp();
        let pts = network_surface(&ctx, 1.0).unwrap();
        let max_net = pts
            .iter()
            .map(|p| p.rep.lambda_net)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_net > 0.23 && max_net <= 0.29, "max λ_net = {max_net}");
    }

    #[test]
    fn tolerance_zones_all_appear_on_surface() {
        use lt_core::prelude::ToleranceZone;
        let ctx = Ctx::quick_temp();
        let pts = network_surface(&ctx, 1.0).unwrap();
        let zones: Vec<_> = pts.iter().map(|p| p.tol_network.zone).collect();
        assert!(zones.contains(&ToleranceZone::Tolerated));
        assert!(zones.contains(&ToleranceZone::PartiallyTolerated));
        assert!(zones.contains(&ToleranceZone::NotTolerated));
    }
}
