//! Paper Figure 7: thread partitioning — `tol_network` along curves of
//! constant exposed computation `n_t · R`.
//!
//! The partitioning strategy for a do-all loop keeps `n_t · R` fixed and
//! trades thread count against granularity. The paper's conclusions, which
//! this generator reproduces: a higher product exposes more work and
//! tolerates better; along one curve, *large `R` with few threads beats
//! many small threads* as long as `n_t > 1`.

use crate::ctx::Ctx;
use crate::figures::common::divisor_pairs;
use crate::output::{ascii_chart, fnum, Table};
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;

/// The constant-work products the paper plots.
pub const PRODUCTS: [usize; 5] = [2, 4, 6, 8, 10];

/// One partitioning point.
pub struct PartitionPoint {
    /// `n_t · R`.
    pub product: usize,
    /// Threads.
    pub n_t: usize,
    /// Runlength.
    pub r: usize,
    /// Remote fraction.
    pub p_remote: f64,
    /// Solved measures.
    pub rep: PerformanceReport,
    /// Network tolerance.
    pub tol: ToleranceReport,
}

/// Solve every divisor pair for every product at one `p_remote`.
pub fn partition_sweep(p_remote: f64) -> Result<Vec<PartitionPoint>> {
    let mut cells = Vec::new();
    for &product in &PRODUCTS {
        for (n_t, r) in divisor_pairs(product) {
            cells.push((product, n_t, r));
        }
    }
    let base = SystemConfig::paper_default().with_p_remote(p_remote);
    parallel_map(&cells, |&(product, n_t, r)| {
        let cfg = base.with_n_threads(n_t).with_runlength(r as f64);
        Ok(PartitionPoint {
            product,
            n_t,
            r,
            p_remote,
            rep: solve(&cfg)?,
            tol: tolerance_index(&cfg, IdealSpec::ZeroSwitchDelay)?,
        })
    })
    .into_iter()
    .collect()
}

/// Generate the figure.
pub fn run(ctx: &Ctx) -> Result<String> {
    let mut out = String::from(
        "Thread partitioning: tol_network along n_t * R = const (paper Figure 7).\n\n",
    );
    for &p_remote in &[0.2, 0.4] {
        let pts = partition_sweep(p_remote)?;
        let mut csv = Table::new(vec![
            "p_remote",
            "product",
            "n_t",
            "R",
            "u_p",
            "tol_network",
        ]);
        for pt in &pts {
            csv.row(vec![
                fnum(pt.p_remote, 2),
                pt.product.to_string(),
                pt.n_t.to_string(),
                pt.r.to_string(),
                fnum(pt.rep.u_p, 4),
                fnum(pt.tol.index, 4),
            ]);
        }
        let csv_note = ctx.save_csv(&format!("fig7_p{}", (p_remote * 100.0) as u32), &csv);

        // One series per product over the R axis (paper's x-axis).
        let rs: Vec<usize> = {
            let mut v: Vec<usize> = pts.iter().map(|p| p.r).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let xs: Vec<f64> = rs.iter().map(|&r| r as f64).collect();
        let series: Vec<(String, Vec<f64>)> = PRODUCTS
            .iter()
            .map(|&prod| {
                let ys = rs
                    .iter()
                    .map(|&r| {
                        pts.iter()
                            .find(|p| p.product == prod && p.r == r)
                            .map(|p| p.tol.index)
                            // lt-lint: allow(LT04, NaN marks a missing grid cell; the chart skips non-finite points)
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                (format!("n_t x R = {prod}"), ys)
            })
            .collect();
        let refs: Vec<(&str, &[f64])> = series
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect();
        out.push_str(&ascii_chart(
            &format!("tol_network vs R, curves of n_t x R = const, p_remote = {p_remote}"),
            &xs,
            &refs,
            60,
            14,
        ));
        out.push_str(&format!("{csv_note}\n\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_product_tolerates_better() {
        // At matched R, the curve with larger n_t*R lies above.
        let pts = partition_sweep(0.2).unwrap();
        let at = |prod: usize, r: usize| {
            pts.iter()
                .find(|p| p.product == prod && p.r == r)
                .map(|p| p.tol.index)
        };
        assert!(at(8, 2).unwrap() > at(4, 2).unwrap());
        assert!(at(10, 2).unwrap() > at(2, 2).unwrap());
    }

    #[test]
    fn high_r_beats_high_nt_on_same_curve() {
        // Paper: "a high R (rather than a high n_t) provides better latency
        // tolerance, as long as n_t is more than 1". Compare (n_t=2, R=4)
        // with (n_t=4, R=2) and (n_t=8, R=1) on the product-8 curve.
        let pts = partition_sweep(0.4).unwrap();
        let at = |n_t: usize, r: usize| {
            pts.iter()
                .find(|p| p.product == 8 && p.n_t == n_t && p.r == r)
                .unwrap()
                .tol
                .index
        };
        assert!(at(2, 4) >= at(8, 1) - 1e-9, "{} vs {}", at(2, 4), at(8, 1));
        assert!(at(4, 2) >= at(8, 1) - 1e-9);
    }

    #[test]
    fn single_thread_cannot_overlap() {
        // n_t = 1 forfeits multithreading: U_p is lowest on each curve.
        let pts = partition_sweep(0.2).unwrap();
        for &prod in &[4usize, 8] {
            let u1 = pts
                .iter()
                .find(|p| p.product == prod && p.n_t == 1)
                .unwrap()
                .rep
                .u_p;
            let best = pts
                .iter()
                .filter(|p| p.product == prod)
                .map(|p| p.rep.u_p)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(u1 < best, "prod {prod}: u1 {u1} vs best {best}");
        }
    }

    #[test]
    fn report_renders() {
        let ctx = Ctx::quick_temp();
        assert!(run(&ctx).unwrap().contains("n_t x R = 10"));
    }
}
