//! Paper Figure 10: system throughput `P · U_p` (a) and the observed
//! latencies `S_obs`, `L_obs` (b) as the machine scales from `P = 4` to
//! `P = 100`, for the uniform and geometric distributions and an ideal
//! (`S = 0`) network; `n_t = 8`, `R = 1`, `p_remote = 0.2`.
//!
//! Reproduced shapes: the geometric curve scales almost linearly while the
//! uniform curve falls away; under the *ideal* network the remote accesses
//! hit the memories with no transit delay, so `L_obs` is **higher** than
//! with the finite-delay network — the paper's "switches as pipeline
//! stages" effect. (The paper additionally reports the geometric+finite-S
//! system overtaking the ideal one by a few percent; see EXPERIMENTS.md
//! for how close our Bard–Schweitzer implementation gets.)

use crate::ctx::Ctx;
use crate::output::{ascii_chart, fnum, Table};
use crate::svg::SvgChart;
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;
use lt_core::topology::Topology;

/// The three model series of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Series {
    /// Uniform remote accesses, finite switch delay.
    Uniform,
    /// Geometric remote accesses, finite switch delay.
    Geometric,
    /// Geometric remote accesses, `S = 0`.
    IdealNetwork,
}

impl Series {
    /// All series.
    pub const ALL: [Series; 3] = [Series::Uniform, Series::Geometric, Series::IdealNetwork];

    /// Label used in the chart legend and CSV.
    pub fn label(&self) -> &'static str {
        match self {
            Series::Uniform => "uniform",
            Series::Geometric => "geometric",
            Series::IdealNetwork => "ideal-network",
        }
    }

    fn config(&self, k: usize) -> SystemConfig {
        let base = SystemConfig::paper_default().with_topology(Topology::torus(k));
        match self {
            Series::Uniform => base.with_pattern(AccessPattern::Uniform),
            Series::Geometric => base,
            Series::IdealNetwork => base.with_switch_delay(0.0),
        }
    }
}

/// One scaling point.
pub struct Fig10Point {
    /// PEs per dimension.
    pub k: usize,
    /// Which machine variant.
    pub series: Series,
    /// Solved measures.
    pub rep: PerformanceReport,
}

/// Solve all series over the size axis.
pub fn sweep(ctx: &Ctx) -> Result<Vec<Fig10Point>> {
    let ks: Vec<usize> = ctx.pick((2..=10).collect(), vec![2, 4, 6]);
    let mut cells = Vec::new();
    for &k in &ks {
        for s in Series::ALL {
            cells.push((k, s));
        }
    }
    parallel_map(&cells, |&(k, series)| {
        Ok(Fig10Point {
            k,
            series,
            rep: solve(&series.config(k))?,
        })
    })
    .into_iter()
    .collect()
}

/// Generate the figure.
pub fn run(ctx: &Ctx) -> Result<String> {
    let pts = sweep(ctx)?;
    let mut csv = Table::new(vec![
        "k",
        "P",
        "series",
        "throughput",
        "u_p",
        "s_obs",
        "l_obs",
    ]);
    for p in &pts {
        csv.row(vec![
            p.k.to_string(),
            (p.k * p.k).to_string(),
            p.series.label().to_string(),
            fnum(p.rep.system_throughput, 3),
            fnum(p.rep.u_p, 4),
            fnum(p.rep.s_obs, 3),
            fnum(p.rep.l_obs, 3),
        ]);
    }
    let csv_note = ctx.save_csv("fig10", &csv);

    let ks: Vec<usize> = {
        let mut v: Vec<usize> = pts.iter().map(|p| p.k).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let xs: Vec<f64> = ks.iter().map(|&k| (k * k) as f64).collect();
    let pick = |series: Series, f: &dyn Fn(&PerformanceReport) -> f64| -> Vec<f64> {
        ks.iter()
            .map(|&k| {
                pts.iter()
                    .find(|p| p.k == k && p.series == series)
                    .map(|p| f(&p.rep))
                    // lt-lint: allow(LT04, NaN marks a missing grid cell; the chart skips non-finite points)
                    .unwrap_or(f64::NAN)
            })
            .collect()
    };

    let linear: Vec<f64> = xs.clone();
    let tp: Vec<(String, Vec<f64>)> = Series::ALL
        .iter()
        .map(|&s| (s.label().to_string(), pick(s, &|r| r.system_throughput)))
        .chain(std::iter::once(("linear".to_string(), linear)))
        .collect();
    let refs: Vec<(&str, &[f64])> = tp.iter().map(|(n, v)| (n.as_str(), v.as_slice())).collect();

    let mut out = String::from("Scaling throughput and latencies (paper Figure 10).\n\n");
    out.push_str(&ascii_chart(
        "(a) system throughput P*U_p vs P",
        &xs,
        &refs,
        60,
        14,
    ));
    out.push('\n');

    let lat: Vec<(String, Vec<f64>)> = vec![
        ("geo S_obs".into(), pick(Series::Geometric, &|r| r.s_obs)),
        ("geo L_obs".into(), pick(Series::Geometric, &|r| r.l_obs)),
        ("uni S_obs".into(), pick(Series::Uniform, &|r| r.s_obs)),
        ("uni L_obs".into(), pick(Series::Uniform, &|r| r.l_obs)),
        (
            "ideal L_obs".into(),
            pick(Series::IdealNetwork, &|r| r.l_obs),
        ),
    ];
    let refs: Vec<(&str, &[f64])> = lat
        .iter()
        .map(|(n, v)| (n.as_str(), v.as_slice()))
        .collect();
    out.push_str(&ascii_chart(
        "(b) observed latencies vs P",
        &xs,
        &refs,
        60,
        14,
    ));
    let to_xy = |data: &[(String, Vec<f64>)]| -> Vec<(String, Vec<(f64, f64)>)> {
        data.iter()
            .map(|(n, ys)| {
                (
                    n.clone(),
                    xs.iter().copied().zip(ys.iter().copied()).collect(),
                )
            })
            .collect()
    };
    let notes = [
        ctx.save_svg(
            "fig10_throughput",
            &SvgChart::new("system throughput P*U_p vs P", "P", "P * U_p"),
            &to_xy(&tp),
        ),
        ctx.save_svg(
            "fig10_latencies",
            &SvgChart::new("observed latencies vs P", "P", "latency (cycles)"),
            &to_xy(&lat),
        ),
    ];
    out.push_str(&format!("\n{csv_note}\n"));
    for n in notes {
        out.push_str(&format!("{n}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(pts: &[Fig10Point], k: usize, s: Series) -> &Fig10Point {
        pts.iter().find(|p| p.k == k && p.series == s).unwrap()
    }

    #[test]
    fn geometric_scales_nearly_linearly() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        // Throughput per PE roughly constant for the geometric pattern.
        let per_pe_small = at(&pts, 2, Series::Geometric).rep.u_p;
        let per_pe_large = at(&pts, 6, Series::Geometric).rep.u_p;
        assert!(
            (per_pe_small - per_pe_large).abs() < 0.08,
            "{per_pe_small} vs {per_pe_large}"
        );
    }

    #[test]
    fn uniform_throughput_falls_behind() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let geo = at(&pts, 6, Series::Geometric).rep.system_throughput;
        let uni = at(&pts, 6, Series::Uniform).rep.system_throughput;
        assert!(geo > 1.2 * uni, "geo {geo} vs uni {uni}");
    }

    #[test]
    fn ideal_network_suffers_higher_memory_latency() {
        // The paper's pipeline-buffer effect: with S = 0 the memory sees
        // more contention, so L_obs rises above the finite-S system's.
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        for &k in &[4usize, 6] {
            let ideal = at(&pts, k, Series::IdealNetwork).rep.l_obs;
            let real = at(&pts, k, Series::Geometric).rep.l_obs;
            assert!(
                ideal > real,
                "k={k}: ideal L_obs {ideal} should exceed finite-S {real}"
            );
        }
    }

    #[test]
    fn uniform_s_obs_grows_with_size() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let s_small = at(&pts, 2, Series::Uniform).rep.s_obs;
        let s_large = at(&pts, 6, Series::Uniform).rep.s_obs;
        assert!(s_large > s_small);
    }

    #[test]
    fn report_renders_both_panels() {
        let ctx = Ctx::quick_temp();
        let text = run(&ctx).unwrap();
        assert!(text.contains("(a) system throughput"));
        assert!(text.contains("(b) observed latencies"));
    }
}
