//! Paper Figure 9: scaling the machine — `tol_network` vs `n_t` for
//! `k ∈ {2, 4, 6, 8, 10}` (P = 4..100), geometric vs uniform remote
//! accesses, at `R ∈ {1, 2}` and `p_remote = 0.2`.
//!
//! Reproduced shapes: under the uniform distribution `d_avg` grows with the
//! machine and the network latency stops being tolerated, while the
//! geometric distribution's `d_avg` approaches `1/(1−p_sw) = 2` and the
//! tolerance stays high and nearly size-independent; the thread count
//! needed to reach the plateau (≈5–8) does not change with `P`.

use crate::ctx::Ctx;
use crate::output::{ascii_chart, fnum, Table};
use crate::svg::SvgChart;
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;
use lt_core::topology::Topology;

/// Mesh sizes per dimension.
pub fn k_axis(ctx: &Ctx) -> Vec<usize> {
    ctx.pick(vec![2, 4, 6, 8, 10], vec![2, 4, 6])
}

/// Thread axis.
pub fn nt_axis(ctx: &Ctx) -> Vec<usize> {
    ctx.pick((1..=10).collect(), vec![1, 4, 8])
}

/// One scaling point.
pub struct ScalePoint {
    /// PEs per dimension.
    pub k: usize,
    /// `true` = geometric, `false` = uniform.
    pub geometric: bool,
    /// Runlength.
    pub r: f64,
    /// Threads.
    pub n_t: usize,
    /// Network tolerance.
    pub tol: ToleranceReport,
}

/// Run the scaling sweep.
pub fn sweep(ctx: &Ctx) -> Result<Vec<ScalePoint>> {
    let mut cells = Vec::new();
    for &k in &k_axis(ctx) {
        for geometric in [true, false] {
            for r in [1.0, 2.0] {
                for &n_t in &nt_axis(ctx) {
                    cells.push((k, geometric, r, n_t));
                }
            }
        }
    }
    parallel_map(&cells, |&(k, geometric, r, n_t)| {
        let pattern = if geometric {
            AccessPattern::geometric(0.5)
        } else {
            AccessPattern::Uniform
        };
        let cfg = SystemConfig::paper_default()
            .with_topology(Topology::torus(k))
            .with_pattern(pattern)
            .with_runlength(r)
            .with_n_threads(n_t);
        Ok(ScalePoint {
            k,
            geometric,
            r,
            n_t,
            tol: tolerance_index(&cfg, IdealSpec::ZeroSwitchDelay)?,
        })
    })
    .into_iter()
    .collect()
}

/// Generate the figure.
pub fn run(ctx: &Ctx) -> Result<String> {
    let pts = sweep(ctx)?;
    let mut csv = Table::new(vec![
        "k",
        "P",
        "distribution",
        "R",
        "n_t",
        "tol_network",
        "u_p",
    ]);
    for p in &pts {
        csv.row(vec![
            p.k.to_string(),
            (p.k * p.k).to_string(),
            if p.geometric { "geometric" } else { "uniform" }.to_string(),
            fnum(p.r, 0),
            p.n_t.to_string(),
            fnum(p.tol.index, 4),
            fnum(p.tol.u_p, 4),
        ]);
    }
    let csv_note = ctx.save_csv("fig9", &csv);

    let mut out = String::from(
        "Scaling: tol_network vs n_t, k = 2..10, geometric vs uniform (paper Figure 9).\n\n",
    );
    for r in [1.0, 2.0] {
        let nts = nt_axis(ctx);
        let xs: Vec<f64> = nts.iter().map(|&n| n as f64).collect();
        let mut series: Vec<(String, Vec<f64>)> = Vec::new();
        for &k in &k_axis(ctx) {
            for geo in [true, false] {
                let ys: Vec<f64> = nts
                    .iter()
                    .map(|&n| {
                        pts.iter()
                            .find(|p| p.k == k && p.geometric == geo && p.r == r && p.n_t == n)
                            .map(|p| p.tol.index)
                            // lt-lint: allow(LT04, NaN marks a missing grid cell; the chart skips non-finite points)
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                series.push((format!("k={k} {}", if geo { "geo" } else { "uni" }), ys));
            }
        }
        let refs: Vec<(&str, &[f64])> = series
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect();
        out.push_str(&ascii_chart(
            &format!("tol_network vs n_t at R = {r}"),
            &xs,
            &refs,
            60,
            14,
        ));
        let xy: Vec<(String, Vec<(f64, f64)>)> = series
            .iter()
            .map(|(n, ys)| {
                (
                    n.clone(),
                    xs.iter().copied().zip(ys.iter().copied()).collect(),
                )
            })
            .collect();
        let note = ctx.save_svg(
            &format!("fig9_r{}", r as u32),
            &SvgChart::new(
                format!("tol_network vs n_t at R = {r} (k = 2..10, geo vs uni)"),
                "n_t",
                "tolerance index",
            ),
            &xy,
        );
        out.push_str(&format!("{note}\n\n"));
    }
    out.push_str(&format!("{csv_note}\n"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(pts: &[ScalePoint], k: usize, geo: bool, r: f64, n_t: usize) -> &ScalePoint {
        pts.iter()
            .find(|p| p.k == k && p.geometric == geo && p.r == r && p.n_t == n_t)
            .expect("point exists")
    }

    #[test]
    fn geometric_beats_uniform_at_scale() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        // At k = 6 the gap is already large; at k = 2 they coincide
        // (every remote node is "nearby").
        let large_geo = at(&pts, 6, true, 1.0, 8).tol.index;
        let large_uni = at(&pts, 6, false, 1.0, 8).tol.index;
        assert!(
            large_geo > large_uni + 0.15,
            "geo {large_geo} vs uni {large_uni}"
        );
        let small_geo = at(&pts, 2, true, 1.0, 8).tol.index;
        let small_uni = at(&pts, 2, false, 1.0, 8).tol.index;
        assert!((small_geo - small_uni).abs() < 0.05, "coincide at k = 2");
    }

    #[test]
    fn geometric_tolerance_is_size_stable() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let t4 = at(&pts, 4, true, 1.0, 8).tol.index;
        let t6 = at(&pts, 6, true, 1.0, 8).tol.index;
        assert!((t4 - t6).abs() < 0.05, "k=4 {t4} vs k=6 {t6}");
    }

    #[test]
    fn higher_runlength_rescues_even_uniform() {
        // Paper observation 4: R = 2 improves tolerance significantly even
        // for the uniform distribution.
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let r1 = at(&pts, 6, false, 1.0, 8).tol.index;
        let r2 = at(&pts, 6, false, 2.0, 8).tol.index;
        assert!(r2 > r1 + 0.05, "R2 {r2} vs R1 {r1}");
    }

    #[test]
    fn plateau_thread_count_is_size_independent() {
        // tol(n_t = 8) close to tol(n_t = 4) for all k (gains mostly done).
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        for &k in &k_axis(&ctx) {
            let t4 = at(&pts, k, true, 1.0, 4).tol.index;
            let t8 = at(&pts, k, true, 1.0, 8).tol.index;
            assert!(t8 - t4 < 0.15, "k={k}: jump {t4} -> {t8}");
        }
    }

    #[test]
    fn report_renders() {
        let ctx = Ctx::quick_temp();
        assert!(run(&ctx).unwrap().contains("tol_network vs n_t at R = 1"));
    }
}
