//! Paper Figure 11 / Section 8: validation of the analytical model against
//! STPN simulation.
//!
//! The paper simulates at `p_remote = 0.5`, `S ∈ {1, 2}` for 100,000 time
//! units and reports model-vs-simulation agreement within ~2% for `λ_net`
//! and ~5% for `S_obs`, with model predictions slightly *below* the
//! simulation for `λ_net`; switching the memory service to deterministic
//! moves `S_obs` by less than ~10%.
//!
//! This generator runs both our simulators — the STPN model (`lt-stpn`)
//! and the direct machine simulator (`lt-qnsim`) — against the AMVA
//! predictions over the `n_t` axis and tabulates the relative errors.

use crate::ctx::Ctx;
use crate::output::{fnum, Table};
use crate::svg::SvgChart;
use lt_core::error::Result;
use lt_core::num::exactly_zero;
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;
use lt_desim::DistFamily;
use lt_qnsim::MmsOptions;
use lt_stpn::mms::SimSettings;

/// One validation point.
pub struct ValidationPoint {
    /// Switch delay.
    pub s: f64,
    /// Threads.
    pub n_t: usize,
    /// Model predictions.
    pub model: PerformanceReport,
    /// STPN simulation.
    pub stpn: lt_stpn::mms::SimResult,
    /// Direct simulation.
    pub direct: lt_qnsim::MmsSimResult,
}

/// Horizon used for the simulations.
pub fn horizon(ctx: &Ctx) -> f64 {
    ctx.pick(100_000.0, 10_000.0)
}

/// Run the validation sweep.
pub fn sweep(ctx: &Ctx) -> Result<Vec<ValidationPoint>> {
    let n_ts: Vec<usize> = ctx.pick(vec![1, 2, 4, 6, 8, 12, 16], vec![2, 8]);
    let mut cells = Vec::new();
    for &s in &[1.0, 2.0] {
        for &n_t in &n_ts {
            cells.push((s, n_t));
        }
    }
    let horizon = horizon(ctx);
    parallel_map(&cells, |&(s, n_t)| {
        let cfg = SystemConfig::paper_default()
            .with_p_remote(0.5)
            .with_switch_delay(s)
            .with_n_threads(n_t);
        let model = solve(&cfg)?;
        let stpn = lt_stpn::mms::simulate(
            &cfg,
            &SimSettings {
                horizon,
                warmup: horizon / 10.0,
                batches: 10,
                seed: 0xF1611 + n_t as u64,
                ..SimSettings::default()
            },
        );
        let direct = lt_qnsim::simulate(
            &cfg,
            &MmsOptions {
                horizon,
                warmup: horizon / 10.0,
                batches: 10,
                seed: 0xD1EC7 + n_t as u64,
                ..MmsOptions::default()
            },
        );
        Ok(ValidationPoint {
            s,
            n_t,
            model,
            stpn,
            direct,
        })
    })
    .into_iter()
    .collect()
}

fn rel(a: f64, b: f64) -> f64 {
    if exactly_zero(b) {
        0.0
    } else {
        (a - b).abs() / b
    }
}

/// Generate the validation report.
pub fn run(ctx: &Ctx) -> Result<String> {
    let pts = sweep(ctx)?;
    let mut table = Table::new(vec![
        "S",
        "n_t",
        "model λ_net",
        "stpn λ_net",
        "err%",
        "model S_obs",
        "stpn S_obs",
        "err%",
        "direct U_p",
        "model U_p",
        "err%",
    ]);
    let mut worst_net: f64 = 0.0;
    let mut worst_sobs: f64 = 0.0;
    for p in &pts {
        let e_net = rel(p.model.lambda_net, p.stpn.lambda_net.mean);
        let e_sobs = rel(p.model.s_obs, p.stpn.s_obs.mean);
        let e_up = rel(p.direct.u_p.mean, p.model.u_p);
        worst_net = worst_net.max(e_net);
        worst_sobs = worst_sobs.max(e_sobs);
        table.row(vec![
            fnum(p.s, 0),
            p.n_t.to_string(),
            fnum(p.model.lambda_net, 4),
            fnum(p.stpn.lambda_net.mean, 4),
            fnum(e_net * 100.0, 1),
            fnum(p.model.s_obs, 2),
            fnum(p.stpn.s_obs.mean, 2),
            fnum(e_sobs * 100.0, 1),
            fnum(p.direct.u_p.mean, 4),
            fnum(p.model.u_p, 4),
            fnum(e_up * 100.0, 1),
        ]);
    }
    let csv_note = ctx.save_csv("fig11", &table);

    // SVG: model vs STPN curves over n_t, one panel per S.
    let mut svg_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for &s_val in &[1.0, 2.0] {
        let mut model_pts = Vec::new();
        let mut sim_pts = Vec::new();
        for p in pts.iter().filter(|p| p.s == s_val) {
            model_pts.push((p.n_t as f64, p.model.lambda_net));
            sim_pts.push((p.n_t as f64, p.stpn.lambda_net.mean));
        }
        svg_series.push((format!("model S={s_val}"), model_pts));
        svg_series.push((format!("STPN S={s_val}"), sim_pts));
    }
    let svg_note = ctx.save_svg(
        "fig11_lambda_net",
        &SvgChart::new(
            "validation: lambda_net vs n_t (model vs STPN)",
            "n_t",
            "lambda_net",
        ),
        &svg_series,
    );

    // Deterministic-memory sensitivity (Section 8's last check).
    let cfg = SystemConfig::paper_default().with_p_remote(0.5);
    let h = horizon(ctx);
    let det = lt_stpn::mms::simulate(
        &cfg,
        &SimSettings {
            horizon: h,
            warmup: h / 10.0,
            batches: 10,
            seed: 0xDE7,
            memory_dist: DistFamily::Deterministic,
            ..SimSettings::default()
        },
    );
    let model = solve(&cfg)?;
    let det_shift = rel(det.s_obs.mean, model.s_obs);

    let mut out = String::from(
        "Validation: AMVA model vs STPN simulation vs direct simulation \
         (paper Fig. 11 / Section 8). p_remote = 0.5.\n\n",
    );
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nWorst-case model-vs-STPN error: λ_net {}%, S_obs {}% \
         (paper reports ~2% and ~5%).\n",
        fnum(worst_net * 100.0, 1),
        fnum(worst_sobs * 100.0, 1)
    ));
    out.push_str(&format!(
        "Deterministic-memory S_obs vs exponential-model prediction: {}% \
         (paper: within ~10%).\n",
        fnum(det_shift * 100.0, 1)
    ));
    out.push_str(&format!("{csv_note}\n{svg_note}\n"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_tracks_both_simulators() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        for p in &pts {
            assert!(
                rel(p.model.lambda_net, p.stpn.lambda_net.mean) < 0.08,
                "S={} n_t={}: λ_net model {} vs stpn {}",
                p.s,
                p.n_t,
                p.model.lambda_net,
                p.stpn.lambda_net.mean
            );
            assert!(
                rel(p.direct.u_p.mean, p.model.u_p) < 0.08,
                "S={} n_t={}: U_p direct {} vs model {}",
                p.s,
                p.n_t,
                p.direct.u_p.mean,
                p.model.u_p
            );
        }
    }

    #[test]
    fn lambda_net_increases_with_threads_and_saturates() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let at = |s: f64, n: usize| {
            pts.iter()
                .find(|p| p.s == s && p.n_t == n)
                .unwrap()
                .stpn
                .lambda_net
                .mean
        };
        assert!(at(1.0, 8) > at(1.0, 2));
        // Higher switch delay halves the saturation rate (Eq. 4).
        assert!(at(2.0, 8) < at(1.0, 8));
    }

    #[test]
    fn report_renders_summary_lines() {
        let ctx = Ctx::quick_temp();
        let text = run(&ctx).unwrap();
        assert!(text.contains("Worst-case model-vs-STPN error"));
        assert!(text.contains("Deterministic-memory"));
    }
}
