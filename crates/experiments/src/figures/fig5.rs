//! Paper Figure 5: the Figure 4 surfaces at runlength `R = 2`.
//!
//! The doubled runlength halves the access rate, so every knee moves right:
//! `λ_net` saturates from `p_remote ≈ 0.6` instead of 0.3, the critical
//! `p_remote` rises to ≈ 0.61 (Equation 5), and the network latency stays
//! tolerated over a much wider range.

use crate::ctx::Ctx;
use crate::figures::common::network_surface_report;

/// Generate the figure.
pub fn run(ctx: &Ctx) -> lt_core::error::Result<String> {
    network_surface_report(ctx, 2.0, "fig5")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::common::network_surface;

    #[test]
    fn report_renders() {
        let ctx = Ctx::quick_temp();
        assert!(run(&ctx).unwrap().contains("R = 2"));
    }

    #[test]
    fn r2_tolerates_more_than_r1() {
        // Same (n_t, p_remote): R = 2 must tolerate at least as well.
        let ctx = Ctx::quick_temp();
        let r1 = network_surface(&ctx, 1.0).unwrap();
        let r2 = network_surface(&ctx, 2.0).unwrap();
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!((a.n_t, a.p_remote), (b.n_t, b.p_remote));
            assert!(
                b.tol_network.index >= a.tol_network.index - 0.02,
                "n_t={} p={}: R2 {} < R1 {}",
                a.n_t,
                a.p_remote,
                b.tol_network.index,
                a.tol_network.index
            );
        }
    }

    #[test]
    fn saturation_onset_shifts_right_with_r() {
        // λ_net at p_remote = 0.3: R = 1 is near saturation; R = 2 is not
        // (its message rate is half as high).
        let ctx = Ctx::quick_temp();
        let r1 = network_surface(&ctx, 1.0).unwrap();
        let r2 = network_surface(&ctx, 2.0).unwrap();
        let net = |pts: &[crate::figures::common::SurfacePoint], p: f64| {
            pts.iter()
                .filter(|pt| pt.n_t == 16 && (pt.p_remote - p).abs() < 1e-9)
                .map(|pt| pt.rep.lambda_net)
                .next()
                .unwrap()
        };
        let sat1 = net(&r1, 0.8);
        assert!(net(&r1, 0.3) > 0.85 * sat1, "R=1 near saturation at 0.3");
        assert!(net(&r2, 0.3) < 0.85 * sat1, "R=2 not yet saturated at 0.3");
    }
}
