//! One module per paper figure.

pub(crate) mod common;

pub mod fig10;
pub mod fig11;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
