//! Shared sweep machinery for the figure generators.

use crate::ctx::Ctx;
use crate::output::{ascii_chart, fnum, Table};
use crate::svg::SvgChart;
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;

/// One solved point of a network-latency surface.
pub struct SurfacePoint {
    /// Threads per processor.
    pub n_t: usize,
    /// Remote-access probability.
    pub p_remote: f64,
    /// The solved measures.
    pub rep: PerformanceReport,
    /// Network tolerance index (`S = 0` ideal).
    pub tol_network: ToleranceReport,
}

/// Thread-count axis (paper: 1..=20).
pub fn nt_axis(ctx: &Ctx) -> Vec<usize> {
    ctx.pick((1..=20).collect(), vec![1, 2, 4, 8, 16])
}

/// `p_remote` axis (paper plots 0..~0.9).
pub fn p_axis(ctx: &Ctx) -> Vec<f64> {
    if ctx.quick {
        vec![0.1, 0.3, 0.5, 0.8]
    } else {
        (1..=18).map(|i| i as f64 * 0.05).collect()
    }
}

/// Solve the `(n_t, p_remote)` surface for a given runlength.
pub fn network_surface(ctx: &Ctx, runlength: f64) -> Result<Vec<SurfacePoint>> {
    let base = SystemConfig::paper_default().with_runlength(runlength);
    let cells: Vec<(usize, f64)> = lt_core::sweep::grid(&nt_axis(ctx), &p_axis(ctx));
    parallel_map(&cells, |&(n_t, p)| {
        let cfg = base.with_n_threads(n_t).with_p_remote(p);
        let rep = solve(&cfg)?;
        let tol = tolerance_index(&cfg, IdealSpec::ZeroSwitchDelay)?;
        Ok(SurfacePoint {
            n_t,
            p_remote: p,
            rep,
            tol_network: tol,
        })
    })
    .into_iter()
    .collect()
}

/// The full fig4/fig5 report for a given runlength.
pub fn network_surface_report(ctx: &Ctx, runlength: f64, id: &str) -> Result<String> {
    let points = network_surface(ctx, runlength)?;

    let mut csv = Table::new(vec![
        "n_t",
        "p_remote",
        "u_p",
        "s_obs",
        "lambda_net",
        "tol_network",
        "zone",
    ]);
    for p in &points {
        csv.row(vec![
            p.n_t.to_string(),
            fnum(p.p_remote, 3),
            fnum(p.rep.u_p, 4),
            fnum(p.rep.s_obs, 3),
            fnum(p.rep.lambda_net, 4),
            fnum(p.tol_network.index, 4),
            p.tol_network.zone.label().to_string(),
        ]);
    }
    let csv_note = ctx.save_csv(id, &csv);

    // Charts: U_p and tol_network vs p_remote for a few thread counts.
    let ps = p_axis(ctx);
    let chart_nts: Vec<usize> = nt_axis(ctx)
        .into_iter()
        .filter(|n| [2usize, 4, 8, 16].contains(n))
        .collect();
    let series_of = |f: &dyn Fn(&SurfacePoint) -> f64| -> Vec<(String, Vec<f64>)> {
        chart_nts
            .iter()
            .map(|&n| {
                let ys: Vec<f64> = ps
                    .iter()
                    .map(|&p| {
                        points
                            .iter()
                            .find(|pt| pt.n_t == n && (pt.p_remote - p).abs() < 1e-9)
                            .map(f)
                            // lt-lint: allow(LT04, NaN marks a missing grid cell; both chart renderers skip non-finite points)
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                (format!("n_t = {n}"), ys)
            })
            .collect()
    };
    let render_chart = |title: &str, data: &[(String, Vec<f64>)]| {
        let refs: Vec<(&str, &[f64])> = data
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect();
        ascii_chart(title, &ps, &refs, 60, 14)
    };
    let u_p_series = series_of(&|pt| pt.rep.u_p);
    let tol_series = series_of(&|pt| pt.tol_network.index);
    let net_series = series_of(&|pt| pt.rep.lambda_net);

    // SVG renditions alongside the CSV.
    let to_xy = |data: &[(String, Vec<f64>)]| -> Vec<(String, Vec<(f64, f64)>)> {
        data.iter()
            .map(|(n, ys)| {
                (
                    n.clone(),
                    ps.iter().copied().zip(ys.iter().copied()).collect(),
                )
            })
            .collect()
    };
    let svg_notes = [
        ctx.save_svg(
            &format!("{id}_u_p"),
            &SvgChart::new(
                format!("U_p vs p_remote (R = {runlength})"),
                "p_remote",
                "U_p",
            ),
            &to_xy(&u_p_series),
        ),
        ctx.save_svg(
            &format!("{id}_tol"),
            &SvgChart::new(
                format!("tol_network vs p_remote (R = {runlength})"),
                "p_remote",
                "tolerance index",
            ),
            &to_xy(&tol_series),
        ),
        ctx.save_svg(
            &format!("{id}_lambda_net"),
            &SvgChart::new(
                format!("lambda_net vs p_remote (R = {runlength})"),
                "p_remote",
                "lambda_net",
            ),
            &to_xy(&net_series),
        ),
    ];

    // Saturation analysis (paper Eq. 4 onset).
    let bn = lt_core::bottleneck::analyze(
        &SystemConfig::paper_default()
            .with_runlength(runlength)
            .with_p_remote(0.5),
    )?;
    // lt-lint: allow(LT04, NaN renders as "NaN" in the saturation note when Eq.4 gives no bound)
    let sat = bn.lambda_net_saturation.unwrap_or(f64::NAN);
    let max_net = points
        .iter()
        .map(|p| p.rep.lambda_net)
        // lt-lint: allow(LT04, fold seed for the max over a non-empty surface)
        .fold(f64::NEG_INFINITY, f64::max);
    let onset = points
        .iter()
        .filter(|p| p.n_t >= 8 && p.rep.lambda_net >= 0.95 * max_net)
        .map(|p| p.p_remote)
        // lt-lint: allow(LT04, fold seed; an empty onset set honestly reports +inf)
        .fold(f64::INFINITY, f64::min);

    let mut out = String::new();
    out.push_str(&format!(
        "Network-latency surfaces at R = {runlength} (paper Figure {}).\n\n",
        if lt_core::num::exactly_eq(runlength, 1.0) {
            "4"
        } else {
            "5"
        }
    ));
    out.push_str(&render_chart("U_p vs p_remote", &u_p_series));
    out.push('\n');
    out.push_str(&render_chart("tol_network vs p_remote", &tol_series));
    out.push('\n');
    out.push_str(&render_chart("lambda_net vs p_remote", &net_series));
    out.push('\n');
    out.push_str(&format!(
        "Saturation: max observed lambda_net = {} vs Eq.4 bound {} \
         (ratio {}); >=95%-of-max reached from p_remote ~ {}.\n",
        fnum(max_net, 4),
        fnum(sat, 4),
        fnum(max_net / sat, 3),
        fnum(onset, 2),
    ));
    out.push_str(&format!("{csv_note}\n"));
    for note in svg_notes {
        out.push_str(&format!("{note}\n"));
    }
    Ok(out)
}

/// Integer divisor pairs `(n_t, R)` with `n_t * R = product`.
pub fn divisor_pairs(product: usize) -> Vec<(usize, usize)> {
    (1..=product)
        .filter(|d| product % d == 0)
        .map(|d| (d, product / d))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_pairs_of_8() {
        assert_eq!(divisor_pairs(8), vec![(1, 8), (2, 4), (4, 2), (8, 1)]);
    }

    #[test]
    fn quick_surface_is_complete() {
        let ctx = Ctx::quick_temp();
        let pts = network_surface(&ctx, 1.0).unwrap();
        assert_eq!(pts.len(), nt_axis(&ctx).len() * p_axis(&ctx).len());
        for p in &pts {
            assert!(p.rep.u_p > 0.0 && p.rep.u_p <= 1.0 + 1e-9);
            assert!(p.tol_network.index > 0.0);
        }
    }
}
