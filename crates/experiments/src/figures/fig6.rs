//! Paper Figure 6: `tol_network` over the `(n_t, R)` plane at
//! `p_remote ∈ {0.2, 0.4}`.
//!
//! The figure underlies the thread-partitioning discussion: runlength `R`
//! lifts the tolerance surface much faster than thread count `n_t`.

use crate::ctx::Ctx;
use crate::output::{ascii_chart, fnum, Table};
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::{grid, parallel_map};

/// Axes of the surface.
pub fn axes(ctx: &Ctx) -> (Vec<usize>, Vec<usize>) {
    let n_t = ctx.pick((1..=20).collect(), vec![1, 2, 4, 8, 16]);
    let r = ctx.pick((1..=10).collect(), vec![1, 2, 4, 8]);
    (n_t, r)
}

/// Solve the surface for one `p_remote`.
pub fn surface(ctx: &Ctx, p_remote: f64) -> Result<Vec<(usize, usize, ToleranceReport)>> {
    let (n_ts, rs) = axes(ctx);
    let cells = grid(&n_ts, &rs);
    let base = SystemConfig::paper_default().with_p_remote(p_remote);
    parallel_map(&cells, |&(n_t, r)| {
        let cfg = base.with_n_threads(n_t).with_runlength(r as f64);
        let tol = tolerance_index(&cfg, IdealSpec::ZeroSwitchDelay)?;
        Ok((n_t, r, tol))
    })
    .into_iter()
    .collect()
}

/// Generate the figure.
pub fn run(ctx: &Ctx) -> Result<String> {
    let mut out = String::from("tol_network over the (n_t, R) plane (paper Figure 6).\n\n");
    for &p_remote in &[0.2, 0.4] {
        let pts = surface(ctx, p_remote)?;
        let mut csv = Table::new(vec!["p_remote", "n_t", "R", "tol_network", "u_p", "zone"]);
        let mut zone_counts = [0usize; 3];
        for (n_t, r, tol) in &pts {
            csv.row(vec![
                fnum(p_remote, 2),
                n_t.to_string(),
                r.to_string(),
                fnum(tol.index, 4),
                fnum(tol.u_p, 4),
                tol.zone.label().to_string(),
            ]);
            zone_counts[match tol.zone {
                ToleranceZone::Tolerated => 0,
                ToleranceZone::PartiallyTolerated => 1,
                ToleranceZone::NotTolerated => 2,
            }] += 1;
        }
        let name = format!("fig6_p{}", (p_remote * 100.0) as u32);
        let csv_note = ctx.save_csv(&name, &csv);

        // Chart: tol vs R at a few n_t.
        let (n_ts, rs) = axes(ctx);
        let xs: Vec<f64> = rs.iter().map(|&r| r as f64).collect();
        let chart_nts: Vec<usize> = n_ts
            .iter()
            .copied()
            .filter(|n| [1usize, 4, 16].contains(n))
            .collect();
        let series: Vec<(String, Vec<f64>)> = chart_nts
            .iter()
            .map(|&n| {
                let ys = rs
                    .iter()
                    .map(|&r| {
                        pts.iter()
                            .find(|(nt, rr, _)| *nt == n && *rr == r)
                            .map(|(_, _, t)| t.index)
                            // lt-lint: allow(LT04, NaN marks a missing grid cell; the chart skips non-finite points)
                            .unwrap_or(f64::NAN)
                    })
                    .collect();
                (format!("n_t = {n}"), ys)
            })
            .collect();
        let refs: Vec<(&str, &[f64])> = series
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect();
        out.push_str(&ascii_chart(
            &format!("tol_network vs R at p_remote = {p_remote}"),
            &xs,
            &refs,
            60,
            12,
        ));
        out.push_str(&format!(
            "zones at p_remote = {p_remote}: tolerated {} / partial {} / not {}  {}\n\n",
            zone_counts[0], zone_counts[1], zone_counts[2], csv_note
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_monotone_in_runlength() {
        let ctx = Ctx::quick_temp();
        let pts = surface(&ctx, 0.4).unwrap();
        let at = |n_t: usize, r: usize| {
            pts.iter()
                .find(|(n, rr, _)| *n == n_t && *rr == r)
                .unwrap()
                .2
                .index
        };
        assert!(at(4, 8) > at(4, 1));
        assert!(at(16, 8) > at(16, 1));
    }

    #[test]
    fn higher_p_remote_lowers_surface() {
        let ctx = Ctx::quick_temp();
        let lo = surface(&ctx, 0.2).unwrap();
        let hi = surface(&ctx, 0.4).unwrap();
        for ((n, r, a), (n2, r2, b)) in lo.iter().zip(&hi) {
            assert_eq!((n, r), (n2, r2));
            assert!(b.index <= a.index + 0.02);
        }
    }

    #[test]
    fn report_renders_both_p_values() {
        let ctx = Ctx::quick_temp();
        let text = run(&ctx).unwrap();
        assert!(text.contains("p_remote = 0.2"));
        assert!(text.contains("p_remote = 0.4"));
    }
}
