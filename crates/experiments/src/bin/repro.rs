//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                      list experiment ids
//! repro all [--quick] [--out D]   run everything
//! repro <id> [--quick] [--out D]  run one experiment
//! ```

use lt_experiments::{find, registry, Ctx};
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  repro list\n  repro all [--quick] [--out DIR]\n  repro <id> [--quick] [--out DIR]\n\nids:"
    );
    for e in registry() {
        eprintln!("  {:18} {}", e.id, e.title);
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out_dir = String::from("results");
    let mut positional = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" | "-q" => quick = true,
            "--out" | "-o" => match it.next() {
                Some(d) => out_dir = d,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => positional.push(a),
        }
    }
    let Some(cmd) = positional.first() else {
        return usage();
    };

    if cmd == "list" {
        for e in registry() {
            println!("{:18} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }

    let ctx = Ctx {
        out_dir: out_dir.into(),
        quick,
    };

    let to_run = if cmd == "all" {
        registry()
    } else {
        match find(cmd) {
            Some(e) => vec![e],
            None => {
                eprintln!("unknown experiment `{cmd}`\n");
                return usage();
            }
        }
    };

    for e in to_run {
        let start = Instant::now();
        println!("==========================================================");
        println!("== {} — {}", e.id, e.title);
        println!("==========================================================");
        let report = match (e.run)(&ctx) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("[{} failed: {err}]", e.id);
                return ExitCode::FAILURE;
            }
        };
        println!("{report}");
        println!(
            "[{} finished in {:.2}s]\n",
            e.id,
            start.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}
