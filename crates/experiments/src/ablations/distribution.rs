//! Distribution ablation: the paper's geometric distribution assigns
//! `p_sw^h` to each *distance class*; a plausible alternative reading
//! assigns `p_sw^h` to each *module*. Only the former reproduces the
//! paper's `d_avg = 1.733`; this ablation quantifies how much the choice
//! matters for the headline results.

use crate::ctx::Ctx;
use crate::output::{fnum, Table};
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;
use lt_core::topology::Topology;

/// One variant comparison.
pub struct DistPoint {
    /// PEs per dimension.
    pub k: usize,
    /// Per-distance-class (paper) values.
    pub per_class: (f64, f64, f64), // d_avg, u_p, tol
    /// Per-module variant values.
    pub per_module: (f64, f64, f64),
}

/// Compare the variants across machine sizes.
pub fn sweep(ctx: &Ctx) -> Result<Vec<DistPoint>> {
    let ks: Vec<usize> = ctx.pick(vec![2, 4, 6, 8, 10], vec![2, 4, 6]);
    parallel_map(&ks, |&k| {
        let eval = |pattern: AccessPattern| -> Result<(f64, f64, f64)> {
            let cfg = SystemConfig::paper_default()
                .with_topology(Topology::torus(k))
                .with_pattern(pattern);
            let rep = solve(&cfg)?;
            let tol = tolerance_index(&cfg, IdealSpec::ZeroSwitchDelay)?;
            Ok((rep.d_avg, rep.u_p, tol.index))
        };
        Ok(DistPoint {
            k,
            per_class: eval(AccessPattern::geometric(0.5))?,
            per_module: eval(AccessPattern::geometric_per_module(0.5))?,
        })
    })
    .into_iter()
    .collect()
}

/// Generate the report.
pub fn run(ctx: &Ctx) -> Result<String> {
    let pts = sweep(ctx)?;
    let mut t = Table::new(vec![
        "k",
        "d_avg class",
        "d_avg module",
        "U_p class",
        "U_p module",
        "tol class",
        "tol module",
    ]);
    for p in &pts {
        t.row(vec![
            p.k.to_string(),
            fnum(p.per_class.0, 3),
            fnum(p.per_module.0, 3),
            fnum(p.per_class.1, 4),
            fnum(p.per_module.1, 4),
            fnum(p.per_class.2, 4),
            fnum(p.per_module.2, 4),
        ]);
    }
    let csv_note = ctx.save_csv("ablation_dist", &t);
    Ok(format!(
        "Geometric-distribution variants, p_sw = 0.5 (per-distance-class = \
         the paper's definition, recovering d_avg = 1.733 at k = 4).\n\n{}\n{csv_note}\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_class_recovers_paper_d_avg_at_k4() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let k4 = pts.iter().find(|p| p.k == 4).unwrap();
        assert!((k4.per_class.0 - 1.7333).abs() < 1e-3);
        assert!((k4.per_module.0 - 1.7333).abs() > 1e-2, "variants differ");
    }

    #[test]
    fn variants_converge_at_k2() {
        // On a 2x2 torus the distance classes have sizes {2, 1}; both
        // variants still differ slightly, but d_avg stays within ~0.2.
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let k2 = pts.iter().find(|p| p.k == 2).unwrap();
        assert!((k2.per_class.0 - k2.per_module.0).abs() < 0.25);
    }

    #[test]
    fn headline_shapes_robust_to_variant() {
        // Both variants must agree the network is tolerated at the default
        // workload — the metric's conclusion is variant-robust.
        let ctx = Ctx::quick_temp();
        for p in sweep(&ctx).unwrap() {
            assert!(p.per_class.2 > 0.8, "k={}: {}", p.k, p.per_class.2);
            assert!(p.per_module.2 > 0.8, "k={}: {}", p.k, p.per_module.2);
        }
    }

    #[test]
    fn report_renders() {
        let ctx = Ctx::quick_temp();
        assert!(run(&ctx).unwrap().contains("1.733"));
    }
}
