//! Symmetric-solver ablation: the `O(M)`-per-iteration translation-
//! symmetric Bard–Schweitzer against the general multi-class solver —
//! agreement (must be exact up to convergence tolerance) and speed.

use crate::ctx::Ctx;
use crate::output::{fnum, Table};
use lt_core::analysis::{solve_network, SolverChoice};
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::qn::build::build_network;
use lt_core::topology::Topology;
use std::time::Instant;

/// One size point.
pub struct SymmetryPoint {
    /// PEs per dimension.
    pub k: usize,
    /// max |ΔU_p| between solvers.
    pub u_p_delta: f64,
    /// Wall time of the general solver (µs).
    pub general_us: f64,
    /// Wall time of the symmetric solver (µs).
    pub symmetric_us: f64,
}

/// Compare across machine sizes.
pub fn sweep(ctx: &Ctx) -> Result<Vec<SymmetryPoint>> {
    let ks: Vec<usize> = ctx.pick(vec![2, 4, 6, 8, 10], vec![2, 4]);
    ks.iter()
        .map(|&k| {
            let cfg = SystemConfig::paper_default().with_topology(Topology::torus(k));
            let mms = build_network(&cfg)?;
            let r = cfg.workload.runlength;

            let start = Instant::now();
            let general = solve_network(&mms, SolverChoice::Amva)?;
            let general_us = start.elapsed().as_secs_f64() * 1e6;

            let start = Instant::now();
            let symmetric = solve_network(&mms, SolverChoice::SymmetricAmva)?;
            let symmetric_us = start.elapsed().as_secs_f64() * 1e6;

            let delta = general
                .throughput
                .iter()
                .zip(&symmetric.throughput)
                .map(|(a, b)| (a - b).abs() * r)
                .fold(0.0, f64::max);
            Ok(SymmetryPoint {
                k,
                u_p_delta: delta,
                general_us,
                symmetric_us,
            })
        })
        .collect()
}

/// Generate the report.
pub fn run(ctx: &Ctx) -> Result<String> {
    let pts = sweep(ctx)?;
    let mut t = Table::new(vec![
        "k",
        "P",
        "max |dU_p|",
        "general us",
        "symmetric us",
        "speedup",
    ]);
    for p in &pts {
        t.row(vec![
            p.k.to_string(),
            (p.k * p.k).to_string(),
            format!("{:.2e}", p.u_p_delta),
            fnum(p.general_us, 0),
            fnum(p.symmetric_us, 0),
            fnum(p.general_us / p.symmetric_us, 1),
        ]);
    }
    let csv_note = ctx.save_csv("ablation_symmetry", &t);
    Ok(format!(
        "Symmetric AMVA fast path vs general multi-class AMVA.\n\n{}\n{csv_note}\n",
        t.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solvers_agree_to_tolerance() {
        let ctx = Ctx::quick_temp();
        for p in sweep(&ctx).unwrap() {
            assert!(p.u_p_delta < 1e-6, "k={}: delta {}", p.k, p.u_p_delta);
        }
    }

    #[test]
    fn symmetric_is_faster_at_scale() {
        // At k >= 4 the class count is 16+; the O(M) iteration wins.
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let k4 = pts.iter().find(|p| p.k == 4).unwrap();
        assert!(
            k4.symmetric_us < k4.general_us,
            "symmetric {} vs general {}",
            k4.symmetric_us,
            k4.general_us
        );
    }

    #[test]
    fn report_renders() {
        let ctx = Ctx::quick_temp();
        assert!(run(&ctx).unwrap().contains("speedup"));
    }
}
