//! Ablations of the implementation's own design choices.

pub mod distribution;
pub mod solver;
pub mod symmetry;
