//! Solver ablation: exact MVA vs Bard–Schweitzer (the paper's Figure 3)
//! vs Linearizer, on systems small enough for the exact recursion.

use crate::ctx::Ctx;
use crate::output::{fnum, Table};
use lt_core::analysis::{solve_with, SolverChoice};
use lt_core::error::Result;
use lt_core::prelude::*;
use lt_core::sweep::parallel_map;
use lt_core::topology::Topology;
use std::time::Instant;

/// One accuracy/cost comparison.
pub struct SolverPoint {
    /// Threads.
    pub n_t: usize,
    /// Remote fraction.
    pub p_remote: f64,
    /// Exact `U_p`.
    pub exact: f64,
    /// Bard–Schweitzer relative error and microseconds.
    pub amva: (f64, f64),
    /// Linearizer relative error and microseconds.
    pub linearizer: (f64, f64),
}

/// Run the comparison on a 2×2 torus.
pub fn sweep(ctx: &Ctx) -> Result<Vec<SolverPoint>> {
    let n_ts: Vec<usize> = ctx.pick(vec![1, 2, 3, 4, 6], vec![2, 4]);
    let ps: Vec<f64> = ctx.pick(vec![0.2, 0.5, 0.8], vec![0.5]);
    let cells = lt_core::sweep::grid(&n_ts, &ps);
    parallel_map(&cells, |&(n_t, p_remote)| {
        let cfg = SystemConfig::paper_default()
            .with_topology(Topology::torus(2))
            .with_n_threads(n_t)
            .with_p_remote(p_remote);
        let timed = |choice: SolverChoice| -> Result<(f64, f64)> {
            let start = Instant::now();
            let u = solve_with(&cfg, choice)?.u_p;
            Ok((u, start.elapsed().as_secs_f64() * 1e6))
        };
        let (exact, _) = timed(SolverChoice::Exact)?;
        let (amva_u, amva_t) = timed(SolverChoice::Amva)?;
        let (lin_u, lin_t) = timed(SolverChoice::Linearizer)?;
        Ok(SolverPoint {
            n_t,
            p_remote,
            exact,
            amva: ((amva_u - exact).abs() / exact, amva_t),
            linearizer: ((lin_u - exact).abs() / exact, lin_t),
        })
    })
    .into_iter()
    .collect()
}

/// Generate the report.
pub fn run(ctx: &Ctx) -> Result<String> {
    let pts = sweep(ctx)?;
    let mut t = Table::new(vec![
        "n_t",
        "p_remote",
        "exact U_p",
        "amva err%",
        "linearizer err%",
        "amva us",
        "linearizer us",
    ]);
    for p in &pts {
        t.row(vec![
            p.n_t.to_string(),
            fnum(p.p_remote, 1),
            fnum(p.exact, 4),
            fnum(p.amva.0 * 100.0, 2),
            fnum(p.linearizer.0 * 100.0, 2),
            fnum(p.amva.1, 0),
            fnum(p.linearizer.1, 0),
        ]);
    }
    let csv_note = ctx.save_csv("ablation_solver", &t);
    let worst_amva = pts.iter().map(|p| p.amva.0).fold(0.0, f64::max);
    let worst_lin = pts.iter().map(|p| p.linearizer.0).fold(0.0, f64::max);
    Ok(format!(
        "Solver ablation on a 2x2 torus (exact MVA affordable).\n\n{}\n\
         Worst-case error vs exact: Bard-Schweitzer {}%, Linearizer {}%.\n\
         The paper's solver choice (Fig. 3 = Bard-Schweitzer) is accurate \
         to a few percent; Linearizer buys most of the residual.\n{csv_note}\n",
        t.render(),
        fnum(worst_amva * 100.0, 2),
        fnum(worst_lin * 100.0, 2)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approximations_stay_within_a_few_percent() {
        let ctx = Ctx::quick_temp();
        for p in sweep(&ctx).unwrap() {
            assert!(p.amva.0 < 0.06, "amva err {}", p.amva.0);
            assert!(p.linearizer.0 < 0.03, "linearizer err {}", p.linearizer.0);
        }
    }

    #[test]
    fn linearizer_no_worse_than_amva_overall() {
        let ctx = Ctx::quick_temp();
        let pts = sweep(&ctx).unwrap();
        let sum_amva: f64 = pts.iter().map(|p| p.amva.0).sum();
        let sum_lin: f64 = pts.iter().map(|p| p.linearizer.0).sum();
        assert!(sum_lin <= sum_amva + 1e-9);
    }

    #[test]
    fn report_renders() {
        let ctx = Ctx::quick_temp();
        assert!(run(&ctx).unwrap().contains("Bard-Schweitzer"));
    }
}
