//! # lt-experiments — regeneration of the paper's evaluation
//!
//! One generator per table and figure of the paper, plus the closed-form
//! checks (Equations 4 and 5), solver/distribution ablations, and the
//! Section 7 extensions. Each generator returns the rendered text report
//! and writes machine-readable CSVs next to it.
//!
//! Run via the `repro` binary:
//!
//! ```text
//! repro list                # what exists
//! repro all --quick        # fast pass over everything
//! repro fig4               # one artifact, full resolution
//! ```
//!
//! The `quick` flag shrinks sweep grids and simulation horizons so the
//! whole evaluation runs in seconds (used by the benches and CI); full
//! resolution matches the grids documented in DESIGN.md.

#![forbid(unsafe_code)]

pub mod ctx;
pub mod output;
pub mod svg;

pub mod ablations;
pub mod extras;
pub mod figures;
pub mod tables;

pub use ctx::Ctx;

/// A runnable experiment.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Short id, also the `repro` subcommand (e.g. `"fig4"`).
    pub id: &'static str,
    /// One-line description.
    pub title: &'static str,
    /// Generator: renders the report and writes CSVs via the context.
    /// Solver failures propagate as `LtError` instead of panicking so the
    /// `repro` binary can report which experiment died and why.
    pub run: fn(&Ctx) -> lt_core::error::Result<String>,
}

/// Every experiment, in the order of the paper's evaluation.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Default model parameters and derived constants (paper Table 1)",
            run: tables::table1::run,
        },
        Experiment {
            id: "fig4",
            title: "U_p, S_obs, lambda_net, tol_network vs (n_t, p_remote) at R=1 (paper Fig. 4)",
            run: figures::fig4::run,
        },
        Experiment {
            id: "fig5",
            title: "U_p, S_obs, lambda_net, tol_network vs (n_t, p_remote) at R=2 (paper Fig. 5)",
            run: figures::fig5::run,
        },
        Experiment {
            id: "table2",
            title: "Equal S_obs, different tolerance: workload determines the zone (paper Table 2)",
            run: tables::table2::run,
        },
        Experiment {
            id: "fig6",
            title: "tol_network vs (n_t, R) at p_remote in {0.2, 0.4} (paper Fig. 6)",
            run: figures::fig6::run,
        },
        Experiment {
            id: "fig7",
            title: "Thread partitioning: tol_network along n_t*R = const (paper Fig. 7)",
            run: figures::fig7::run,
        },
        Experiment {
            id: "table3",
            title: "Thread partitioning vs network latency tolerance (paper Table 3)",
            run: tables::table3::run,
        },
        Experiment {
            id: "fig8",
            title: "tol_memory vs (n_t, R) at L in {1, 2} (paper Fig. 8)",
            run: figures::fig8::run,
        },
        Experiment {
            id: "table4",
            title: "Thread partitioning vs memory latency tolerance (paper Table 4)",
            run: tables::table4::run,
        },
        Experiment {
            id: "fig9",
            title: "Scaling: tol_network vs n_t for k=2..10, geometric vs uniform (paper Fig. 9)",
            run: figures::fig9::run,
        },
        Experiment {
            id: "fig10",
            title: "Scaling: throughput and latencies vs P (paper Fig. 10)",
            run: figures::fig10::run,
        },
        Experiment {
            id: "fig11",
            title: "Validation: analytical model vs STPN simulation (paper Fig. 11 / Section 8)",
            run: figures::fig11::run,
        },
        Experiment {
            id: "eq4",
            title: "Network saturation law lambda_net,sat = 1/(2 d_avg S) (paper Eq. 4)",
            run: extras::eq4::run,
        },
        Experiment {
            id: "eq5",
            title: "Critical p_remote knee (paper Eq. 5)",
            run: extras::eq5::run,
        },
        Experiment {
            id: "ablation-solver",
            title: "Solver ablation: exact MVA vs Bard-Schweitzer vs Linearizer",
            run: ablations::solver::run,
        },
        Experiment {
            id: "ablation-dist",
            title: "Geometric distribution variants: per-distance-class vs per-module",
            run: ablations::distribution::run,
        },
        Experiment {
            id: "ablation-symmetry",
            title: "Symmetric AMVA fast path vs general AMVA: agreement and speed",
            run: ablations::symmetry::run,
        },
        Experiment {
            id: "ext-priority",
            title: "Extension: EM-4-style local-priority memory (Section 7 discussion)",
            run: extras::priority::run,
        },
        Experiment {
            id: "ext-ports",
            title: "Extension: multi-ported memory, model (Seidmann) vs exact simulation",
            run: extras::ports::run,
        },
        Experiment {
            id: "ext-buffers",
            title: "Extension: finite switch buffers (paper footnote 3)",
            run: extras::buffers::run,
        },
        Experiment {
            id: "ext-hotspot",
            title: "Extension: hot-spot traffic and the asymmetric solver path",
            run: extras::hotspot::run,
        },
        Experiment {
            id: "ext-cache",
            title: "Extension: cache-derived workloads (footnote 4: R = 1/miss-rate)",
            run: extras::cache::run,
        },
        Experiment {
            id: "ext-outstanding",
            title: "Extension: limited concurrent memory operations (hardware parallelism)",
            run: extras::outstanding::run,
        },
        Experiment {
            id: "ext-topology",
            title: "Extension: interconnect shape (square/rectangular torus, ring) at equal P",
            run: extras::topology::run,
        },
        Experiment {
            id: "zones",
            title: "Tolerance-zone design map over (R, p_remote) with boundary curves",
            run: extras::zones::run,
        },
        Experiment {
            id: "ext-nonmono",
            title: "Extension: searching for tol > 1 with exact MVA (Section 7 footnote 2)",
            run: extras::nonmono::run,
        },
    ]
}

/// Find an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<_> = registry().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn find_known_and_unknown() {
        assert!(find("fig4").is_some());
        assert!(find("fig999").is_none());
    }

    #[test]
    fn registry_covers_all_paper_artifacts() {
        let ids: Vec<_> = registry().iter().map(|e| e.id).collect();
        for required in [
            "table1", "table2", "table3", "table4", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "eq4", "eq5",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }
}
