//! Minimal SVG line charts — no dependencies, just enough to turn each
//! regenerated figure into a standalone `.svg` beside its CSV.
//!
//! Deliberately small: x/y axes with ticks, one polyline per series with a
//! color cycle and a legend, optional log-free linear scales only. The CSV
//! remains the ground truth; the SVG is for eyeballs.

use std::fmt::Write as _;

/// Chart-wide options.
#[derive(Debug, Clone)]
pub struct SvgChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl SvgChart {
    /// A chart with the default 720×480 canvas.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        SvgChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            width: 720,
            height: 480,
        }
    }

    /// Render series (`(name, points)`) to an SVG document. Non-finite
    /// points break the polyline. Returns `None` when there is nothing
    /// finite to draw.
    pub fn render(&self, series: &[(String, Vec<(f64, f64)>)]) -> Option<String> {
        const COLORS: [&str; 8] = [
            "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
        ];
        let margin_l = 64.0;
        let margin_r = 160.0; // legend space
        let margin_t = 40.0;
        let margin_b = 48.0;
        let plot_w = self.width as f64 - margin_l - margin_r;
        let plot_h = self.height as f64 - margin_t - margin_b;

        // lt-lint: allow(LT04, fold seeds for the data range; the !is_finite branch below returns None when nothing is drawable)
        let mut x_min = f64::INFINITY;
        let mut x_max = f64::NEG_INFINITY; // lt-lint: allow(LT04, fold seed)
        let mut y_min = f64::INFINITY; // lt-lint: allow(LT04, fold seed)
        let mut y_max = f64::NEG_INFINITY; // lt-lint: allow(LT04, fold seed)
        for (_, pts) in series {
            for &(x, y) in pts {
                if x.is_finite() && y.is_finite() {
                    x_min = x_min.min(x);
                    x_max = x_max.max(x);
                    y_min = y_min.min(y);
                    y_max = y_max.max(y);
                }
            }
        }
        if !x_min.is_finite() || !y_min.is_finite() {
            return None;
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }
        // A little headroom on y.
        let pad = 0.05 * (y_max - y_min);
        let (y_min, y_max) = (y_min - pad, y_max + pad);

        let sx = move |x: f64| margin_l + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = move |y: f64| margin_t + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" font-size="12">"#,
            w = self.width,
            h = self.height
        );
        let _ = write!(
            svg,
            r#"<rect width="{w}" height="{h}" fill="white"/>"#,
            w = self.width,
            h = self.height
        );
        // Title and axis labels.
        let _ = write!(
            svg,
            r#"<text x="{x}" y="22" text-anchor="middle" font-size="15">{t}</text>"#,
            x = margin_l + plot_w / 2.0,
            t = escape(&self.title)
        );
        let _ = write!(
            svg,
            r#"<text x="{x}" y="{y}" text-anchor="middle">{t}</text>"#,
            x = margin_l + plot_w / 2.0,
            y = self.height as f64 - 10.0,
            t = escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{y}" text-anchor="middle" transform="rotate(-90 16 {y})">{t}</text>"#,
            y = margin_t + plot_h / 2.0,
            t = escape(&self.y_label)
        );
        // Plot frame.
        let _ = write!(
            svg,
            r##"<rect x="{x}" y="{y}" width="{w}" height="{h}" fill="none" stroke="#444"/>"##,
            x = margin_l,
            y = margin_t,
            w = plot_w,
            h = plot_h
        );
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x_min + (x_max - x_min) * i as f64 / 4.0;
            let px = sx(fx);
            let _ = write!(
                svg,
                r##"<line x1="{px}" y1="{y1}" x2="{px}" y2="{y2}" stroke="#bbb" stroke-dasharray="3,3"/>"##,
                y1 = margin_t,
                y2 = margin_t + plot_h
            );
            let _ = write!(
                svg,
                r#"<text x="{px}" y="{ty}" text-anchor="middle">{v}</text>"#,
                ty = margin_t + plot_h + 16.0,
                v = tick(fx)
            );
            let fy = y_min + (y_max - y_min) * i as f64 / 4.0;
            let py = sy(fy);
            let _ = write!(
                svg,
                r##"<line x1="{x1}" y1="{py}" x2="{x2}" y2="{py}" stroke="#bbb" stroke-dasharray="3,3"/>"##,
                x1 = margin_l,
                x2 = margin_l + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{tx}" y="{ty}" text-anchor="end">{v}</text>"#,
                tx = margin_l - 6.0,
                ty = py + 4.0,
                v = tick(fy)
            );
        }
        // Series.
        for (si, (name, pts)) in series.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            let mut path = String::new();
            let mut pen_down = false;
            for &(x, y) in pts {
                if !x.is_finite() || !y.is_finite() {
                    pen_down = false;
                    continue;
                }
                let cmd = if pen_down { 'L' } else { 'M' };
                let _ = write!(path, "{cmd}{:.2},{:.2} ", sx(x), sy(y));
                pen_down = true;
            }
            if !path.is_empty() {
                let _ = write!(
                    svg,
                    r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1.8"/>"#
                );
            }
            // Point markers.
            for &(x, y) in pts.iter().filter(|(x, y)| x.is_finite() && y.is_finite()) {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="2.5" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend entry.
            let ly = margin_t + 14.0 + 18.0 * si as f64;
            let lx = margin_l + plot_w + 12.0;
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{ly}" x2="{x2}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
                x2 = lx + 18.0
            );
            let _ = write!(
                svg,
                r#"<text x="{tx}" y="{ty}">{n}</text>"#,
                tx = lx + 24.0,
                ty = ly + 4.0,
                n = escape(name)
            );
        }
        svg.push_str("</svg>");
        Some(svg)
    }
}

fn tick(v: f64) -> String {
    if lt_core::num::exactly_zero(v) {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<(String, Vec<(f64, f64)>)> {
        vec![
            (
                "linear".into(),
                (0..10).map(|i| (i as f64, i as f64)).collect(),
            ),
            (
                "quadratic".into(),
                (0..10).map(|i| (i as f64, (i * i) as f64 / 10.0)).collect(),
            ),
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let chart = SvgChart::new("demo", "x", "y");
        let svg = chart.render(&demo_series()).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2, "one polyline per series");
        assert!(svg.contains("linear"));
        assert!(svg.contains("quadratic"));
        // Every circle marker for 2 series x 10 points.
        assert_eq!(svg.matches("<circle").count(), 20);
    }

    #[test]
    fn escapes_markup_in_labels() {
        let chart = SvgChart::new("a<b & c", "x", "y");
        let svg = chart.render(&demo_series()).unwrap();
        assert!(svg.contains("a&lt;b &amp; c"));
        assert!(!svg.contains("a<b"));
    }

    #[test]
    fn nan_breaks_the_line_without_panicking() {
        let series = vec![(
            "gappy".to_string(),
            vec![(0.0, 1.0), (1.0, f64::NAN), (2.0, 3.0)],
        )];
        let chart = SvgChart::new("gaps", "x", "y");
        let svg = chart.render(&series).unwrap();
        // Two M commands: pen lifts at the NaN.
        let path_start = svg.find("<path").unwrap();
        let path = &svg[path_start..svg[path_start..].find("/>").unwrap() + path_start];
        assert_eq!(path.matches('M').count(), 2, "{path}");
    }

    #[test]
    fn all_nan_yields_none() {
        let series = vec![("empty".to_string(), vec![(f64::NAN, f64::NAN)])];
        assert!(SvgChart::new("t", "x", "y").render(&series).is_none());
        assert!(SvgChart::new("t", "x", "y").render(&[]).is_none());
    }

    #[test]
    fn flat_series_does_not_divide_by_zero() {
        let series = vec![("flat".to_string(), vec![(0.0, 2.0), (1.0, 2.0)])];
        let svg = SvgChart::new("flat", "x", "y").render(&series).unwrap();
        assert!(!svg.contains("NaN"));
    }
}
